// C++20 concepts for the public container API.
//
// Every structure in this repo — the paper's PNB-BST, the baselines, the
// PnbMap key/value layer and the sharded front-end — is written against one
// of these surfaces, and baseline/set_adapter.h static_asserts each adapter
// specialization against them, so an API drift is a compile error instead of
// a duck-typing surprise deep inside a bench.
//
//   OrderedSet<S, K>        point ops: insert / erase / contains
//   Scannable<S, K>         linear range queries: range_count / range_scan
//   PrefixScannable<S, K>   early-terminating scans: range_visit_while
//   ParallelScannable<S, K> multi-threaded snapshot scans (src/scan/)
//   BatchIngestible<S>      batch ingest (src/ingest/): bulk_load on a
//                           fresh/private structure, apply_batch on a live
//                           one
//   OrderedMap<M, K, V>     key/value point ops incl. get / get_or / assign
//   MapScannable<M, K, V>   key/value range queries: visit_range & friends
//   Snapshottable<S>        snapshot() handle with size() (+ phase() where
//                           the structure is phase-versioned, see
//                           PhasedSnapshottable)
#pragma once

// Same fail-fast guard as reclaim/reclaimer.h: one readable error instead
// of a concept-syntax cascade when the compiler is not in C++20 mode.
#if !defined(__cpp_concepts) || __cpp_concepts < 201707L
#error "PNB-BST requires C++20 (concepts): compile with -std=c++20 or newer"
#endif

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace pnbbst {

// Point-operation surface of an ordered set of K. All three return whether
// the operation changed / observed membership.
template <class S, class K>
concept OrderedSet = requires(S s, const K& k) {
  { s.insert(k) } -> std::same_as<bool>;
  { s.erase(k) } -> std::same_as<bool>;
  { s.contains(k) } -> std::same_as<bool>;
};

// Range-query surface of an ordered set: counts and materialized ascending
// scans over the inclusive key interval [lo, hi].
template <class S, class K>
concept Scannable = requires(S s, const K& lo, const K& hi) {
  { s.range_count(lo, hi) } -> std::same_as<std::size_t>;
  { s.range_scan(lo, hi) } -> std::same_as<std::vector<K>>;
};

// Early-terminating scans: the visitor returns false to stop; the visited
// keys are an ascending prefix of the range.
template <class S, class K>
concept PrefixScannable =
    Scannable<S, K> &&
    requires(S s, const K& lo, const K& hi, bool (*vis)(const K&)) {
      s.range_visit_while(lo, hi, vis);
    };

// Multi-threaded snapshot scans (the src/scan/ engine): the same results as
// the sequential scan surface, produced by chunking one snapshot across a
// worker pool. The unsigned argument is the scan-thread count; structures
// take a richer scan::ParallelScanOptions that converts implicitly from it.
// parallel_range_scan must return exactly what range_scan returns (keys for
// sets, pairs for maps) — chunked scans of one phase concatenate into the
// sequential scan's output, so the concept can demand type equality. The
// concept deliberately does not refine Scannable/MapScannable: it applies
// to both shapes, whose materialized element types differ.
template <class S, class K>
concept ParallelScannable =
    requires(S s, const K& lo, const K& hi, unsigned n) {
      { s.range_count(lo, hi) } -> std::same_as<std::size_t>;
      { s.parallel_range_count(lo, hi, n) } -> std::same_as<std::size_t>;
      { s.parallel_range_scan(lo, hi, n) }
          -> std::same_as<decltype(s.range_scan(lo, hi))>;
    };

// Batch ingest surface (the src/ingest/ engine). `bulk_item` is what
// bulk_load consumes (K for sets, std::pair<K, V> for maps); `batch_op` is
// an ingest::BatchOp over the same shape. bulk_load builds a balanced tree
// in parallel and REQUIRES a fresh, still-private structure (single-writer
// precondition, documented in ingest/bulk_build.h); apply_batch is safe
// against live structures — each op takes the ordinary lock-free path. The
// result shape is checked structurally (counters convertible to size_t) so
// this header stays free of ingest/ includes.
template <class S>
concept BatchIngestible =
    requires(S s, std::vector<typename S::bulk_item> items,
             std::vector<typename S::batch_op> ops) {
      typename S::bulk_item;
      typename S::batch_op;
      { s.bulk_load(std::move(items)) } -> std::same_as<std::size_t>;
      { s.apply_batch(std::move(ops)).applied }
          -> std::convertible_to<std::size_t>;
      { s.apply_batch(std::move(ops)).inserted }
          -> std::convertible_to<std::size_t>;
      { s.apply_batch(std::move(ops)).erased }
          -> std::convertible_to<std::size_t>;
    };

// Point-operation surface of an ordered map from K to V.
template <class M, class K, class V>
concept OrderedMap = requires(M m, const K& k, const V& v) {
  { m.insert(k, v) } -> std::same_as<bool>;
  { m.erase(k) } -> std::same_as<bool>;
  { m.contains(k) } -> std::same_as<bool>;
  { m.get(k) } -> std::same_as<std::optional<V>>;
  { m.get_or(k, v) } -> std::same_as<V>;
  { m.assign(k, v) } -> std::same_as<bool>;
  { m.size() } -> std::same_as<std::size_t>;
  { m.empty() } -> std::same_as<bool>;
};

// Range-query surface of an ordered map: visitation yields (key, value),
// materialized scans yield pairs in ascending key order.
template <class M, class K, class V>
concept MapScannable =
    requires(M m, const K& lo, const K& hi, void (*vis)(const K&, const V&),
             bool (*pred)(const K&, const V&)) {
      { m.range_count(lo, hi) } -> std::same_as<std::size_t>;
      { m.range_scan(lo, hi) } -> std::same_as<std::vector<std::pair<K, V>>>;
      m.visit_range(lo, hi, vis);
      m.range_visit_while(lo, hi, pred);
    };

// A structure whose state at one instant can be captured as a first-class
// handle supporting mutually consistent queries.
template <class S>
concept Snapshottable = requires(S s) {
  typename S::Snapshot;
  { s.snapshot() } -> std::same_as<typename S::Snapshot>;
  { s.snapshot().size() } -> std::convertible_to<std::size_t>;
};

// Snapshottable whose handle exposes the phase (version number) it froze —
// the PNB-BST multi-version substrate.
template <class S>
concept PhasedSnapshottable =
    Snapshottable<S> && requires(S s) {
      { s.snapshot().phase() } -> std::convertible_to<std::uint64_t>;
    };

}  // namespace pnbbst
