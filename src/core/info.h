// Info records (Fig. 2, lines 5–14) plus the lifetime manager that lets a
// non-GC language reclaim them.
//
// Semantics per the paper: an Info record describes one attempt of an
// Insert (freezes nodes[0]=p flagged, nodes[1]=l marked) or Delete
// (nodes[0]=gp flagged, nodes[1..3]=p,l,sibling marked). Only `state`
// mutates after construction (Observation 1). In both shapes, exactly the
// nodes at index >= 1 are marked, so membership in `I.mark` is an index
// test rather than a stored array.
//
// Lifetime (DESIGN.md §1, substitution 1): update words keep pointing at an
// Info long after the operation finished, so Infos are reference-counted:
//   +1 by a thread *before* it attempts a freeze CAS installing the Info
//      (pre-increment keeps the count conservative: the count can never
//      under-report a word that still points at the Info);
//   -1 if that freeze CAS fails;
//   -1 by the thread whose freeze CAS overwrites a word pointing at it;
//   -1 by the node deleter for the word's final value.
// The decrement that reaches zero retires the Info through the epoch
// reclaimer (its state is final by then, Lemma 9); a `retired` latch makes
// the transition idempotent against late helpers that transiently
// resurrect the count (+1/-1 around a doomed CAS).
#pragma once

#include <atomic>
#include <cstdint>

#include "core/node.h"
#include "core/tagged_update.h"
#include "util/cacheline.h"

namespace pnbbst {

enum class InfoState : std::uint8_t {
  kUndecided = 0,  // ⊥
  kTry = 1,
  kCommit = 2,
  kAbort = 3,
};

// Cache-line isolation is the allocator's job, not the type's: arena size
// classes round every slot up to whole cache lines and 64-align it, so
// slab-packed Infos never false-share on `state`. The struct itself stays
// naturally aligned — an alignas(kCacheLine) here would force every heap
// allocation through the over-aligned operator new (a measurably slower
// memalign path on the update-heavy benches) for no benefit, since malloc
// chunk headers already separate adjacent records.
template <class Key>
struct PnbInfo {
  using Node = PnbNode<Key>;
  using Internal = PnbInternal<Key>;
  using Update = TaggedUpdate<PnbInfo>;

  static constexpr int kMaxNodes = 4;

  std::atomic<InfoState> state{InfoState::kUndecided};
  std::uint8_t num_nodes = 0;     // 2 for Insert, 4 for Delete
  bool is_dummy = false;          // the per-tree Dummy record (line 30)
  bool from_delete = false;       // provenance (debug / stats only)
  Node* nodes[kMaxNodes] = {};  // nodes to freeze; [0] flagged, rest marked
  Update old_update[kMaxNodes];   // expected values for the freeze CASes
  Internal* par = nullptr;        // node whose child pointer will change
  Node* old_child = nullptr;
  Node* new_child = nullptr;
  std::uint64_t seq = 0;          // the attempt's sequence number

  // Lifetime manager (not part of the paper's record).
  std::atomic<std::int64_t> live_refs{0};
  std::atomic<bool> retired{false};
  // Type-erased hook back to the owning tree's reclaimer, installed at
  // construction; invoked by whichever thread drops the last reference.
  void* reclaim_ctx = nullptr;
  void (*retire_fn)(void* ctx, PnbInfo* self) = nullptr;

  InfoState load_state(std::memory_order order = std::memory_order_seq_cst)
      const noexcept {
    return state.load(order);
  }

  bool state_in_progress() const noexcept {
    const InfoState s = load_state();
    return s == InfoState::kUndecided || s == InfoState::kTry;
  }

  // Whether index i belongs to I.mark (see file comment).
  bool is_marked_index(int i) const noexcept { return i >= 1; }

  // Lifetime helpers -------------------------------------------------------

  void ref_acquire() noexcept {
    live_refs.fetch_add(1, std::memory_order_acq_rel);
  }

  // Returns true iff this release was the one that dropped the count to
  // zero *for the first time* — the caller must then retire the record.
  bool ref_release() noexcept {
    if (live_refs.fetch_sub(1, std::memory_order_acq_rel) != 1) return false;
    return !retired.exchange(true, std::memory_order_acq_rel);
  }
};

// Frozen(up) — Fig. 4, lines 89–91. Dummy words answer from the tag bits
// alone (the Dummy Info is permanently kAbort: flag → not in progress,
// mark → aborted), skipping the dependent load of the Info's state.
template <class Key>
inline bool frozen(TaggedUpdate<PnbInfo<Key>> up) noexcept {
  if (up.is_dummy()) return false;
  const InfoState s = up.info()->load_state();
  if (up.is_flag()) {
    return s == InfoState::kUndecided || s == InfoState::kTry;
  }
  return s != InfoState::kAbort;  // Mark: ⊥, Try or Commit
}

}  // namespace pnbbst
