// Operation statistics policies for the tree templates.
//
// NullOpStats compiles to nothing (the default). CountingOpStats uses
// relaxed atomic counters and powers the handshaking / helping ablation
// benchmarks (Tab.E5) and several tests. Counters are named after the
// paper's mechanisms.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/trace.h"

namespace pnbbst {

// Point-in-time copy of every mechanism counter: plain integers so
// benches and the obs registry can read/diff without sprinkling
// .load() calls. NullOpStats returns an all-zero snapshot, letting
// generic reporting code compile against either policy.
struct OpStatsSnapshot {
  std::uint64_t attempts = 0;
  std::uint64_t commits = 0;
  std::uint64_t handshake_aborts = 0;
  std::uint64_t freeze_fail_aborts = 0;
  std::uint64_t validate_fails = 0;
  std::uint64_t helps = 0;
  std::uint64_t scans = 0;
  std::uint64_t scan_helps = 0;
  std::uint64_t child_cas_failures = 0;
  std::uint64_t nodes_allocated = 0;
  std::uint64_t infos_allocated = 0;
  std::uint64_t nodes_retired = 0;
  std::uint64_t unpublished_frees = 0;
};

struct NullOpStats {
  static constexpr bool kEnabled = false;
  void inc_attempts() noexcept {}
  void inc_commits() noexcept {}
  void inc_handshake_aborts() noexcept {}
  void inc_freeze_fail_aborts() noexcept {}
  void inc_validate_fails() noexcept {}
  void inc_helps() noexcept {}
  void inc_scans() noexcept {}
  void inc_scan_helps() noexcept {}
  void inc_child_cas_failures() noexcept {}
  void inc_nodes_allocated(std::uint64_t = 1) noexcept {}
  void inc_infos_allocated() noexcept {}
  void inc_nodes_retired() noexcept {}
  void inc_unpublished_frees(std::uint64_t = 1) noexcept {}

  OpStatsSnapshot snapshot() const noexcept { return {}; }
};

struct CountingOpStats {
  static constexpr bool kEnabled = true;

  // One update-loop iteration (an "attempt" in the paper's terminology).
  std::atomic<std::uint64_t> attempts{0};
  // Update attempts whose Info object reached Commit.
  std::atomic<std::uint64_t> commits{0};
  // Attempts aborted by the handshaking check (Counter advanced).
  std::atomic<std::uint64_t> handshake_aborts{0};
  // Attempts aborted because a later freeze CAS lost a race.
  std::atomic<std::uint64_t> freeze_fail_aborts{0};
  // ValidateLeaf / ValidateLink failures that forced a retry.
  std::atomic<std::uint64_t> validate_fails{0};
  // Calls to Help() on someone else's Info object (the helping mechanism).
  std::atomic<std::uint64_t> helps{0};
  // RangeScan / snapshot traversals started.
  std::atomic<std::uint64_t> scans{0};
  // Help() calls issued from inside a scan traversal.
  std::atomic<std::uint64_t> scan_helps{0};
  // Child CAS attempts that failed (another helper already applied it).
  std::atomic<std::uint64_t> child_cas_failures{0};
  // Allocation counters (used by reclamation accounting tests).
  std::atomic<std::uint64_t> nodes_allocated{0};
  std::atomic<std::uint64_t> infos_allocated{0};
  // Retire-side counters (tab6 pairs them with the allocator's
  // AllocStats gauges so allocation and reclamation read as one table).
  // Nodes handed to the reclaimer after a successful unlink / abort.
  std::atomic<std::uint64_t> nodes_retired{0};
  // Speculative nodes/Infos freed directly (never published to anyone).
  std::atomic<std::uint64_t> unpublished_frees{0};

  void inc_attempts() noexcept { bump(attempts); }
  void inc_commits() noexcept { bump(commits); }
  // The paper-mechanism events also feed the obs trace ring (one relaxed
  // load + branch when tracing is disabled, the default).
  void inc_handshake_aborts() noexcept {
    bump(handshake_aborts);
    obs::trace_event(obs::TraceKind::kHandshakeAbort);
  }
  void inc_freeze_fail_aborts() noexcept {
    bump(freeze_fail_aborts);
    obs::trace_event(obs::TraceKind::kFreezeFailAbort);
  }
  void inc_validate_fails() noexcept { bump(validate_fails); }
  void inc_helps() noexcept {
    bump(helps);
    obs::trace_event(obs::TraceKind::kHelp, 0);
  }
  void inc_scans() noexcept { bump(scans); }
  void inc_scan_helps() noexcept {
    bump(scan_helps);
    obs::trace_event(obs::TraceKind::kHelp, 1);
  }
  void inc_child_cas_failures() noexcept { bump(child_cas_failures); }
  void inc_nodes_allocated(std::uint64_t n = 1) noexcept {
    nodes_allocated.fetch_add(n, std::memory_order_relaxed);
  }
  void inc_infos_allocated() noexcept { bump(infos_allocated); }
  void inc_nodes_retired() noexcept { bump(nodes_retired); }
  void inc_unpublished_frees(std::uint64_t n = 1) noexcept {
    unpublished_frees.fetch_add(n, std::memory_order_relaxed);
  }

  OpStatsSnapshot snapshot() const noexcept {
    OpStatsSnapshot s;
    s.attempts = attempts.load(std::memory_order_relaxed);
    s.commits = commits.load(std::memory_order_relaxed);
    s.handshake_aborts = handshake_aborts.load(std::memory_order_relaxed);
    s.freeze_fail_aborts =
        freeze_fail_aborts.load(std::memory_order_relaxed);
    s.validate_fails = validate_fails.load(std::memory_order_relaxed);
    s.helps = helps.load(std::memory_order_relaxed);
    s.scans = scans.load(std::memory_order_relaxed);
    s.scan_helps = scan_helps.load(std::memory_order_relaxed);
    s.child_cas_failures =
        child_cas_failures.load(std::memory_order_relaxed);
    s.nodes_allocated = nodes_allocated.load(std::memory_order_relaxed);
    s.infos_allocated = infos_allocated.load(std::memory_order_relaxed);
    s.nodes_retired = nodes_retired.load(std::memory_order_relaxed);
    s.unpublished_frees =
        unpublished_frees.load(std::memory_order_relaxed);
    return s;
  }

 private:
  static void bump(std::atomic<std::uint64_t>& c) noexcept {
    c.fetch_add(1, std::memory_order_relaxed);
  }
};

}  // namespace pnbbst
