// Sharded key/value front-end: a user-session store on ShardedPnbMap.
// Writers churn sessions routed to range-partitioned shards while a monitor
// thread runs merged cross-shard scans; a final composite snapshot reports
// per-band occupancy. Demonstrates the consistency contract: point ops are
// per-shard linearizable, merged scans are per-key atomic across shards.
//
//   build/examples/sharded_kv [--sessions=N] [--writers=N]
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "scan/parallel_scan.h"
#include "shard/sharded_map.h"
#include "util/cli.h"
#include "util/random.h"

namespace {

struct Session {
  long user_id;
  long last_seen;
};

constexpr long kUserSpace = 1 << 20;

}  // namespace

int main(int argc, char** argv) {
  pnbbst::Cli cli(argc, argv);
  const long sessions = cli.get_int("sessions", 200000);
  const unsigned writers =
      static_cast<unsigned>(cli.get_int("writers", 4));
  for (const auto& unknown : cli.unknown()) {
    std::fprintf(stderr, "unknown flag: --%s\n", unknown.c_str());
    return 2;
  }

  // 8 shards, range-partitioned over the user-id space: point ops touch one
  // shard; a narrow scan touches only the shards its band overlaps.
  pnbbst::ShardedPnbMap<long, Session, 8, pnbbst::RangeSplitter<long>> store(
      pnbbst::RangeSplitter<long>{0, kUserSpace});
  std::atomic<bool> done{false};

  std::vector<std::thread> pool;
  for (unsigned ti = 0; ti < writers; ++ti) {
    pool.emplace_back([&, ti] {
      pnbbst::Xoshiro256 rng(pnbbst::thread_seed(2026, ti));
      for (long i = 0; i < sessions / writers; ++i) {
        const long uid = static_cast<long>(rng.next_bounded(kUserSpace));
        if (rng.next_bounded(5) != 0) {
          store.insert(uid, Session{uid, i});
        } else {
          store.erase(uid);
        }
      }
    });
  }

  std::thread monitor([&] {
    pnbbst::Xoshiro256 rng(31337);
    long scans = 0;
    std::size_t seen = 0;
    while (!done.load()) {
      const long lo = static_cast<long>(rng.next_bounded(kUserSpace - 4096));
      seen += store.range_count(lo, lo + 4095);  // merged, wait-free/shard
      ++scans;
    }
    std::printf("[monitor] %ld merged scans, %zu sessions observed\n", scans,
                seen);
  });

  for (auto& th : pool) th.join();
  done = true;
  monitor.join();

  // Composite snapshot: one wait-free snapshot per shard, queried
  // consistently (repeatable) while the store would keep moving.
  auto snap = store.snapshot();
  std::printf("live sessions: %zu across 8 shards (phases:", snap.size());
  for (auto p : snap.phases()) std::printf(" %llu", (unsigned long long)p);
  std::printf(")\n");
  constexpr long kBand = kUserSpace / 8;
  for (int b = 0; b < 8; ++b) {
    std::printf("  band %d: %zu sessions\n", b,
                snap.range_count(b * kBand, (b + 1) * kBand - 1));
  }
  const auto oldest = snap.range_first(0, kUserSpace - 1, 3);
  std::printf("3 lowest user ids:");
  for (const auto& [uid, s] : oldest) std::printf(" %ld", uid);
  std::printf("\n");

  // Keyspace-wide audit through the parallel scan engine: the same frozen
  // composite snapshot, its per-shard scans executed concurrently on the
  // shared worker pool and fed to the same k-way merge — identical result,
  // less wall-clock on multi-core machines.
  const auto all = snap.parallel_range_scan(
      0, kUserSpace - 1, pnbbst::scan::ParallelScanOptions(8));
  std::printf("parallel audit: %zu sessions (== %zu from the same snapshot)\n",
              all.size(), snap.size());
  std::puts("sharded_kv done");
  return 0;
}
