// Quickstart: the PNB-BST public API in five minutes.
//
//   build/examples/quickstart
//
// Covers: insert/erase/contains, wait-free range queries, snapshots, and
// plugging in a reclaimer + operation statistics.
#include <cstdio>

#include "core/pnb_bst.h"

int main() {
  // A concurrent ordered set of longs. Defaults: std::less, shared
  // epoch-based reclamation, no stats.
  pnbbst::PnbBst<long> set;

  // --- Point operations (non-blocking, linearizable) ---
  set.insert(30);
  set.insert(10);
  set.insert(20);
  std::printf("insert duplicate 10 -> %s\n",
              set.insert(10) ? "true" : "false");        // false
  std::printf("contains 20        -> %s\n",
              set.contains(20) ? "true" : "false");      // true
  set.erase(20);
  std::printf("contains 20 (erased)-> %s\n",
              set.contains(20) ? "true" : "false");      // false

  // --- Range queries (wait-free, linearizable) ---
  for (long k = 0; k < 100; k += 7) set.insert(k);
  std::printf("keys in [10, 50]:");
  set.range_visit(10, 50, [](long k) { std::printf(" %ld", k); });
  std::printf("\n");
  std::printf("count in [0, 99]   -> %zu\n", set.range_count(0, 99));
  std::printf("size               -> %zu\n", set.size());

  // --- Snapshots: many queries against one consistent phase ---
  auto snap = set.snapshot();
  set.insert(1000);
  set.erase(0);
  std::printf("snapshot still has 0      -> %s\n",
              snap.contains(0) ? "true" : "false");      // true
  std::printf("snapshot lacks 1000       -> %s\n",
              snap.contains(1000) ? "false!" : "true");  // true (lacks it)
  std::printf("snapshot size / live size -> %zu / %zu\n", snap.size(),
              set.size());

  // --- Statistics + explicit reclaimer domain ---
  pnbbst::EpochReclaimer domain;
  {
    pnbbst::PnbBst<long, std::less<long>, pnbbst::EpochReclaimer,
                   pnbbst::CountingOpStats>
        counted(domain);
    for (long k = 0; k < 1000; ++k) counted.insert(k);
    for (long k = 0; k < 1000; ++k) counted.erase(k);
    std::printf("commits=%llu attempts=%llu\n",
                static_cast<unsigned long long>(counted.stats().commits.load()),
                static_cast<unsigned long long>(
                    counted.stats().attempts.load()));
  }
  domain.quiescent_flush();
  std::printf("reclaimer: retired=%llu freed=%llu pending=%llu\n",
              static_cast<unsigned long long>(domain.retired_count()),
              static_cast<unsigned long long>(domain.freed_count()),
              static_cast<unsigned long long>(domain.pending_count()));
  std::puts("quickstart done");
  return 0;
}
