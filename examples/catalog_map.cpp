// Product catalog on PnbMap: concurrent sellers update listings while
// shoppers run price-range queries and paginated browsing — the ordered
// key/value layer over the persistent tree.
//
//   build/examples/catalog_map [--listings=N]
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/pnb_map.h"
#include "util/cli.h"
#include "util/random.h"

namespace {

struct Listing {
  long product_id = 0;
  long stock = 0;
};

}  // namespace

int main(int argc, char** argv) {
  pnbbst::Cli cli(argc, argv);
  const long listings = cli.get_int("listings", 50000);
  for (const auto& unknown : cli.unknown()) {
    std::fprintf(stderr, "unknown flag: --%s\n", unknown.c_str());
    return 2;
  }

  // Keyed by price-in-cents (unique per listing in this toy model).
  pnbbst::PnbMap<long, Listing> catalog;
  std::atomic<bool> done{false};

  std::vector<std::thread> sellers;
  for (unsigned ti = 0; ti < 3; ++ti) {
    sellers.emplace_back([&, ti] {
      pnbbst::Xoshiro256 rng(pnbbst::thread_seed(777, ti));
      for (long i = 0; i < listings / 3; ++i) {
        const long price = static_cast<long>(rng.next_bounded(1000000));
        if (rng.next_bounded(4) != 0) {
          catalog.insert(price,
                         Listing{static_cast<long>(rng.next()),
                                 static_cast<long>(rng.next_bounded(100))});
        } else {
          catalog.erase(price);
        }
      }
    });
  }

  std::thread shopper([&] {
    pnbbst::Xoshiro256 rng(999);
    long searches = 0;
    std::size_t found = 0;
    while (!done.load()) {
      const long budget_lo = static_cast<long>(rng.next_bounded(900000));
      found += catalog.range_count(budget_lo, budget_lo + 50000);
      ++searches;
    }
    std::printf("[shopper] %ld price-range searches, %zu listings seen\n",
                searches, found);
  });

  for (auto& th : sellers) th.join();
  done = true;
  shopper.join();

  // Paginated browse of the cheapest listings from a consistent snapshot.
  auto snap = catalog.snapshot();
  std::printf("catalog size: %zu listings\n", snap.size());
  std::printf("10 cheapest listings (price: stock):\n");
  int shown = 0;
  snap.range_visit(0, 1000000, [&shown](long price, const Listing& l) {
    if (shown < 10) {
      std::printf("  %ld: stock %ld\n", price, l.stock);
      ++shown;
    }
  });
  std::puts("catalog_map done");
  return 0;
}
