// Time-series analytics: the paper's motivating big-data scenario — a
// shared in-memory index ingesting events while analytics queries run
// wait-free range scans over time windows (§1: "shared in-memory tree-based
// data indices ... for fast data retrieval and useful data analytics").
//
// Ingest threads insert event timestamps; an analytics thread concurrently
// computes per-window event counts with linearizable range queries, and a
// retention thread erases expired events — all without blocking each other.
//
//   build/examples/timeseries_analytics [--events=N] [--ingesters=K]
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/pnb_bst.h"
#include "util/cli.h"
#include "util/random.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  pnbbst::Cli cli(argc, argv);
  const long events = cli.get_int("events", 200000);
  const unsigned ingesters = static_cast<unsigned>(cli.get_int("ingesters", 3));
  for (const auto& unknown : cli.unknown()) {
    std::fprintf(stderr, "unknown flag: --%s\n", unknown.c_str());
    return 2;
  }

  // Index keyed by event timestamp (synthetic microsecond ticks). Each
  // ingester owns a residue class so keys never collide.
  pnbbst::PnbBst<long> index;
  std::atomic<long> ingested{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> pool;
  for (unsigned ti = 0; ti < ingesters; ++ti) {
    pool.emplace_back([&, ti] {
      pnbbst::Xoshiro256 rng(pnbbst::thread_seed(2026, ti));
      const long per = events / ingesters;
      for (long i = 0; i < per; ++i) {
        // Timestamps arrive roughly in order with jitter.
        const long ts = i * 100 + static_cast<long>(rng.next_bounded(100));
        index.insert(ts * static_cast<long>(ingesters) + ti);
        ingested.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Retention: drop everything older than a sliding horizon.
  std::thread retention([&] {
    long horizon = 0;
    while (!done.load()) {
      horizon += 50000;
      index.range_visit(0, horizon, [&](long ts) { index.erase(ts); });
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  // Analytics: tumbling-window counts over the live index.
  std::thread analytics([&] {
    int windows = 0;
    while (!done.load()) {
      const long hi = ingested.load() * 120;  // rough frontier
      const long window = 100000;
      std::size_t total = 0;
      for (long lo = hi > 10 * window ? hi - 10 * window : 0; lo < hi;
           lo += window) {
        total += index.range_count(lo, lo + window - 1);
      }
      ++windows;
      if (windows % 20 == 0) {
        std::printf("[analytics] window sweep %d: %zu events in last 10 "
                    "windows, index size ~%zu\n",
                    windows, total, index.size());
      }
    }
  });

  pnbbst::Timer timer;
  for (auto& th : pool) th.join();
  done = true;
  retention.join();
  analytics.join();

  std::printf("ingested %ld events in %.2fs; final index size %zu\n",
              ingested.load(), timer.elapsed_s(), index.size());

  // Post-hoc consistent report from a snapshot: events per decile.
  auto snap = index.snapshot();
  const long span = events * 120;
  std::printf("final distribution by decile:");
  for (int d = 0; d < 10; ++d) {
    const long lo = span / 10 * d;
    std::printf(" %zu", snap.range_count(lo, lo + span / 10 - 1));
  }
  std::printf("\n");
  std::puts("timeseries_analytics done");
  return 0;
}
