// Batch ingest end-to-end: the life cycle of a bulk-fed store.
//
//   1. COLD LOAD  — bulk_load 1M (key, value) pairs into a sharded map:
//      parallel balanced construction, no CAS traffic (single-writer
//      precondition holds — the store is still private).
//   2. BURST WRITES — a writer streams batched updates (apply_batch:
//      sorted, deduplicated, fanned across the executor through the
//      ordinary lock-free paths) while an auditor thread runs parallel
//      merged snapshot scans and checks every observed pair.
//   3. LIVE RESHARD — migrate the whole store to a wider routing function
//      while the auditor keeps reading: readers see the pre- or
//      post-reshard table, never a mix, and any write racing the cutover
//      is recorded in the migration's write-intent ledger and replayed —
//      nothing acknowledged is lost (loss-free reshard contract,
//      DESIGN.md §9).
//   4. AUTO RECLAMATION — the maps the reshard replaced are pinned only as
//      long as a pre-reshard snapshot lease exists; once the auditor's
//      last snapshot drops, retired_maps() falls to 0 on its own. No
//      purge_retired() call anywhere (it is test-only now).
//
//   build/examples/bulk_ingest [--keys=N] [--batches=N] [--batchsize=N]
#include <atomic>
#include <cstdio>
#include <thread>
#include <utility>
#include <vector>

#include "ingest/batch_apply.h"
#include "shard/sharded_map.h"
#include "util/cli.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

using pnbbst::ingest::BatchOp;
using pnbbst::ingest::IngestOptions;

// Value scheme the auditor can verify for any key: v == k * 7.
long value_of(long k) { return k * 7; }

}  // namespace

int main(int argc, char** argv) {
  pnbbst::Cli cli(argc, argv);
  const long keys = cli.get_int("keys", 1000000);
  const int batches = static_cast<int>(cli.get_int("batches", 40));
  const int batch_size = static_cast<int>(cli.get_int("batchsize", 20000));
  for (const auto& unknown : cli.unknown()) {
    std::fprintf(stderr, "unknown flag: --%s\n", unknown.c_str());
    return 2;
  }
  const long keyspace = 2 * keys;  // batches write into the upper half too

  pnbbst::ShardedPnbMap<long, long, 8, pnbbst::RangeSplitter<long>> store(
      pnbbst::RangeSplitter<long>{0, keys});

  // --- 1. cold load ---------------------------------------------------------
  std::vector<std::pair<long, long>> items;
  items.reserve(static_cast<std::size_t>(keys));
  for (long k = 0; k < keys; ++k) items.emplace_back(k, value_of(k));
  pnbbst::Timer load_timer;
  const std::size_t loaded =
      store.bulk_load(std::move(items), IngestOptions(8));
  std::printf("[load] bulk_load: %zu keys in %.1f ms (balanced, phase 0)\n",
              loaded, load_timer.elapsed_ms());

  // --- 2. burst writes under a parallel scan audit --------------------------
  std::atomic<bool> stop{false};
  std::atomic<long> audits{0};
  std::thread auditor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      // One composite snapshot, per-shard scans fanned across the executor.
      const auto all = store.parallel_range_scan(0, keyspace - 1, 4);
      long prev = -1;
      for (const auto& [k, v] : all) {
        if (k <= prev || v != value_of(k)) {
          std::fprintf(stderr, "AUDIT FAILED at key %ld\n", k);
          std::exit(1);
        }
        prev = k;
      }
      audits.fetch_add(1, std::memory_order_relaxed);
    }
  });

  pnbbst::Xoshiro256 rng(2026);
  pnbbst::Timer batch_timer;
  std::size_t changed = 0;
  for (int b = 0; b < batches; ++b) {
    // Mixed burst: new keys in the upper half, erases of earlier burst keys.
    std::vector<BatchOp<long, long>> ops;
    ops.reserve(static_cast<std::size_t>(batch_size));
    for (int i = 0; i < batch_size; ++i) {
      const long k = keys + static_cast<long>(rng.next_bounded(
                                static_cast<std::uint64_t>(keys)));
      if (rng.next_bounded(4) != 0) {
        ops.push_back(BatchOp<long, long>::insert(k, value_of(k)));
      } else {
        ops.push_back(BatchOp<long, long>::erase(k));
      }
    }
    changed += store.apply_batch(std::move(ops), IngestOptions(4)).changed();
  }
  std::printf(
      "[burst] %d batches x %d ops in %.1f ms (%zu net changes) "
      "under %ld parallel audits\n",
      batches, batch_size, batch_timer.elapsed_ms(), changed,
      audits.load());

  // --- 3. live reshard (reads AND the audit keep flowing) -------------------
  const std::size_t before = store.size();
  pnbbst::Timer reshard_timer;
  const std::size_t migrated =
      store.reshard(pnbbst::RangeSplitter<long>{0, keyspace}, IngestOptions(8));
  std::printf(
      "[reshard] migrated %zu entries to the [0, %ld) routing in %.1f ms; "
      "reads never blocked, racing writes replay from the intent ledger\n",
      migrated, keyspace, reshard_timer.elapsed_ms());
  std::printf("[gc] retired shard maps right after cutover: %zu "
              "(pinned by in-flight audit snapshots)\n",
              store.retired_maps());

  stop.store(true, std::memory_order_release);
  auditor.join();

  const std::size_t after = store.size();
  std::printf("[verify] size before reshard %zu == after %zu; audits ran "
              "across the cutover: %ld\n",
              before, after, audits.load());
  if (before != after || store.get_or(0, -1) != 0 ||
      store.get_or(keys - 1, -1) != value_of(keys - 1)) {
    std::fprintf(stderr, "VERIFY FAILED\n");
    return 1;
  }
  // --- 4. automatic reclamation --------------------------------------------
  // The auditor's last snapshot lease is gone; the lifecycle manager has
  // already handed every replaced map to the reclaimer by itself.
  if (store.retired_maps() != 0) {
    std::fprintf(stderr, "GC FAILED: %zu retired maps still held\n",
                 store.retired_maps());
    return 1;
  }
  std::puts("[gc] retired_maps() == 0 — reclaimed automatically, "
            "no purge_retired() needed");
  std::puts("bulk_ingest done");
  return 0;
}
