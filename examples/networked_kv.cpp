// Networked key/value service: the whole PR-7 stack in one binary. An
// epoll Server fronts a ShardedPnbMap on a loopback ephemeral port; a
// few Client connections drive point traffic, one bulk-loads through
// BATCH frames, one watches with RANGE queries; then the open-loop load
// generator measures the service's SLO latency (p50/p99/p999 from the
// scheduled send time, coordinated-omission-safe) and STATS reports the
// server- and map-side gauges — including the shed counters that would
// light up under retired-bytes overload.
//
//   build/examples/networked_kv [--events=N] [--conns=N] [--qps=N]
#include <cstdio>
#include <inttypes.h>
#include <vector>

#include "loadgen/client.h"
#include "loadgen/loadgen.h"
#include "server/server.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace pnbbst;
  Cli cli(argc, argv);
  const long events = cli.get_int("events", 50000);
  const unsigned conns = static_cast<unsigned>(cli.get_int("conns", 2));
  const double qps = cli.get_double("qps", 4000.0);
  for (const auto& unknown : cli.unknown()) {
    std::fprintf(stderr, "unknown flag: --%s\n", unknown.c_str());
    return 2;
  }

  constexpr std::int64_t kKeySpace = 1 << 16;
  net::ServerMap map(RangeSplitter<std::int64_t>{0, kKeySpace});
  net::ServerConfig scfg;
  scfg.loops = 2;
  net::Server server(map, scfg);
  if (!server.start()) return 1;
  std::printf("serving 127.0.0.1:%u (2 event loops, 8 shards)\n",
              server.port());

  // Bulk load through the wire: BATCH frames funnel into
  // ingest::apply_batch (deduped, shard-parallel) server-side.
  net::Client loader;
  if (!loader.connect("127.0.0.1", server.port())) return 1;
  std::vector<net::BatchEntry> batch;
  long loaded = 0;
  for (long k = 0; k < events; ++k) {
    batch.push_back(net::BatchEntry::insert(k % kKeySpace, k));
    if (batch.size() == 4096 || k + 1 == events) {
      const auto br = loader.batch(batch);
      if (br.status != net::Status::kOk) {
        std::fprintf(stderr, "batch rejected (status %u)\n",
                     static_cast<unsigned>(br.status));
        return 1;
      }
      loaded += static_cast<long>(br.applied);
      batch.clear();
    }
  }
  std::printf("bulk-loaded %ld ops over BATCH frames\n", loaded);

  // Point and range traffic on separate connections.
  net::Client reader;
  if (!reader.connect("127.0.0.1", server.port())) return 1;
  const auto got = reader.get(123);
  std::printf("GET 123 -> %s\n",
              got.status == net::Status::kOk ? "hit" : "miss");
  const auto rr = reader.range(0, kKeySpace, 0);
  std::printf("RANGE count over the keyspace: %" PRIu64 " keys\n", rr.count);
  const auto first = reader.range(1000, 2000, 5);
  std::printf("RANGE first-5 of [1000,2000]: %zu pairs\n",
              first.pairs.size());

  // Open-loop load: requests due on a fixed schedule, latency measured
  // from the scheduled send time so server stalls inflate the tail.
  loadgen::LoadOptions lopts;
  lopts.port = server.port();
  lopts.connections = conns;
  lopts.seconds = 0.5;
  lopts.target_qps = qps;
  lopts.key_range = kKeySpace;
  const loadgen::LoadResult lr = run_load(lopts);
  std::printf("open loop @ %.0f qps x %u conns: %.0f qps served, "
              "p50=%.1fus p99=%.1fus p999=%.1fus (%" PRIu64 " late)\n",
              qps, conns, lr.qps(),
              static_cast<double>(lr.latency_ns.p50()) / 1000.0,
              static_cast<double>(lr.latency_ns.p99()) / 1000.0,
              static_cast<double>(lr.latency_ns.p999()) / 1000.0,
              lr.late_sends);

  // STATS over the wire: server counters plus the map's admission and
  // lifecycle gauges (sheds would appear as batches_deferred > 0).
  const auto st = reader.stats();
  std::printf("stats: ops_served=%" PRIu64 " conns_accepted=%" PRIu64
              " batch_ops=%" PRIu64 " batches_admitted=%" PRIu64
              " batches_deferred=%" PRIu64 " retired_bytes=%" PRIu64 "\n",
              st.value_or(net::StatId::kOpsServed, 0),
              st.value_or(net::StatId::kConnsAccepted, 0),
              st.value_or(net::StatId::kBatchOpsApplied, 0),
              st.value_or(net::StatId::kBatchesAdmitted, 0),
              st.value_or(net::StatId::kBatchesDeferred, 0),
              st.value_or(net::StatId::kRetiredBytes, 0));

  server.stop();
  std::printf("done: map holds %zu keys\n", map.size());
  return lr.errors == 0 ? 0 : 1;
}
