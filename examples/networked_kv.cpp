// Networked key/value service: the whole PR-7 stack in one binary. An
// epoll Server fronts a ShardedPnbMap on a loopback ephemeral port; a
// few Client connections drive point traffic, one bulk-loads through
// BATCH frames, one watches with RANGE queries; then the open-loop load
// generator measures the service's SLO latency (p50/p99/p999 from the
// scheduled send time, coordinated-omission-safe) and STATS reports the
// server- and map-side gauges — including the shed counters that would
// light up under retired-bytes overload. The server also exposes the
// observability plane (DESIGN.md §14): a Prometheus /metrics HTTP
// listener on an ephemeral port, announced as a METRICS_URL= line that
// tools/obs_scrape.py --spawn parses to scrape and validate the page.
//
//   build/examples/networked_kv [--events=N] [--conns=N] [--qps=N]
//                               [--linger-ms=N]
#include <chrono>
#include <cstdio>
#include <inttypes.h>
#include <thread>
#include <vector>

#include "loadgen/client.h"
#include "loadgen/loadgen.h"
#include "server/server.h"
#include "shard/rebalance.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace pnbbst;
  Cli cli(argc, argv);
  const long events = cli.get_int("events", 50000);
  const unsigned conns = static_cast<unsigned>(cli.get_int("conns", 2));
  const double qps = cli.get_double("qps", 4000.0);
  // Keep serving this long after the workload finishes, so an external
  // scraper (CI's obs_scrape --spawn step) has a window to hit /metrics.
  const long linger_ms = cli.get_int("linger-ms", 0);
  for (const auto& unknown : cli.unknown()) {
    std::fprintf(stderr, "unknown flag: --%s\n", unknown.c_str());
    return 2;
  }

  constexpr std::int64_t kKeySpace = 1 << 16;
  net::ServerMap map(RangeSplitter<std::int64_t>{0, kKeySpace});
  net::ServerConfig scfg;
  scfg.loops = 2;
  scfg.metrics_port = 0;  // ephemeral /metrics HTTP listener
  net::Server server(map, scfg);
  if (!server.start()) return 1;
  std::printf("serving 127.0.0.1:%u (2 event loops, 8 shards)\n",
              server.port());

  // Adaptive sharding on the serving map: the rebalancer senses skew off
  // the same per-shard families the server just registered (label
  // selector == the server's port label) and reshards through the
  // loss-free migration path while traffic runs. The sequential bulk
  // load below lands on the low shards, so a trigger is expected. Built
  // BEFORE the METRICS_URL announcement so a scraper that fetches the
  // moment the line appears already sees the pnb_rebalance_* families.
  char port_label[32];
  std::snprintf(port_label, sizeof(port_label), "port=\"%u\"",
                server.port());
  Rebalancer<net::ServerMap>::Config rcfg;
  rcfg.labels = port_label;
  rcfg.interval = std::chrono::milliseconds(100);
  Rebalancer<net::ServerMap> rebalancer(map, rcfg);
  rebalancer.start();

  std::printf("METRICS_URL=http://127.0.0.1:%u/metrics\n",
              server.metrics_port());
  std::fflush(stdout);

  // Bulk load through the wire: BATCH frames funnel into
  // ingest::apply_batch (deduped, shard-parallel) server-side.
  net::Client loader;
  if (!loader.connect("127.0.0.1", server.port())) return 1;
  std::vector<net::BatchEntry> batch;
  long loaded = 0;
  for (long k = 0; k < events; ++k) {
    batch.push_back(net::BatchEntry::insert(k % kKeySpace, k));
    if (batch.size() == 4096 || k + 1 == events) {
      const auto br = loader.batch(batch);
      if (br.status != net::Status::kOk) {
        std::fprintf(stderr, "batch rejected (status %u)\n",
                     static_cast<unsigned>(br.status));
        return 1;
      }
      loaded += static_cast<long>(br.applied);
      batch.clear();
    }
  }
  std::printf("bulk-loaded %ld ops over BATCH frames\n", loaded);

  // Point and range traffic on separate connections.
  net::Client reader;
  if (!reader.connect("127.0.0.1", server.port())) return 1;
  const auto got = reader.get(123);
  std::printf("GET 123 -> %s\n",
              got.status == net::Status::kOk ? "hit" : "miss");
  const auto rr = reader.range(0, kKeySpace, 0);
  std::printf("RANGE count over the keyspace: %" PRIu64 " keys\n", rr.count);
  const auto first = reader.range(1000, 2000, 5);
  std::printf("RANGE first-5 of [1000,2000]: %zu pairs\n",
              first.pairs.size());

  // Open-loop load: requests due on a fixed schedule, latency measured
  // from the scheduled send time so server stalls inflate the tail.
  loadgen::LoadOptions lopts;
  lopts.port = server.port();
  lopts.connections = conns;
  lopts.seconds = 0.5;
  lopts.target_qps = qps;
  lopts.key_range = kKeySpace;
  const loadgen::LoadResult lr = run_load(lopts);
  std::printf("open loop @ %.0f qps x %u conns: %.0f qps served, "
              "p50=%.1fus p99=%.1fus p999=%.1fus (%" PRIu64 " late)\n",
              qps, conns, lr.qps(),
              static_cast<double>(lr.latency_ns.p50()) / 1000.0,
              static_cast<double>(lr.latency_ns.p99()) / 1000.0,
              static_cast<double>(lr.latency_ns.p999()) / 1000.0,
              lr.late_sends);

  // STATS over the wire: server counters plus the map's admission and
  // lifecycle gauges (sheds would appear as batches_deferred > 0).
  const auto st = reader.stats();
  std::printf("stats: ops_served=%" PRIu64 " conns_accepted=%" PRIu64
              " batch_ops=%" PRIu64 " batches_admitted=%" PRIu64
              " batches_deferred=%" PRIu64 " batches_shed=%" PRIu64
              " retired_bytes=%" PRIu64 "\n",
              st.value_or(net::StatId::kOpsServed, 0),
              st.value_or(net::StatId::kConnsAccepted, 0),
              st.value_or(net::StatId::kBatchOpsApplied, 0),
              st.value_or(net::StatId::kBatchesAdmitted, 0),
              st.value_or(net::StatId::kBatchesDeferred, 0),
              st.value_or(net::StatId::kBatchesShed, 0),
              st.value_or(net::StatId::kRetiredBytes, 0));
  std::printf("requests: get=%" PRIu64 " put=%" PRIu64 " del=%" PRIu64
              " batch=%" PRIu64 " range=%" PRIu64 " stats=%" PRIu64
              " metrics=%" PRIu64 "\n",
              st.value_or(net::StatId::kReqGet, 0),
              st.value_or(net::StatId::kReqPut, 0),
              st.value_or(net::StatId::kReqDel, 0),
              st.value_or(net::StatId::kReqBatch, 0),
              st.value_or(net::StatId::kReqRange, 0),
              st.value_or(net::StatId::kReqStats, 0),
              st.value_or(net::StatId::kReqMetrics, 0));

  // The binary METRICS opcode serves the same exposition text as the
  // HTTP listener — print a couple of headline series.
  const auto mr = reader.metrics();
  if (mr.status == net::Status::kOk) {
    std::printf("METRICS opcode: %zu bytes of Prometheus text\n",
                mr.text.size());
  }

  if (linger_ms > 0) {
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
  }
  server.stop();
  rebalancer.stop();
  std::printf("rebalancer: %" PRIu64 " adaptive reshards, last skew %.2f\n",
              rebalancer.triggers(), rebalancer.last_skew());
  std::printf("done: map holds %zu keys\n", map.size());
  return lr.errors == 0 ? 0 : 1;
}
