// Order book: price levels in a concurrent ordered set. Trading threads add
// and cancel levels non-blockingly; a market-data thread publishes
// top-of-book depth using wait-free range scans — a scan can never be
// starved or blocked by the traders (Theorem 47), and every published
// depth snapshot is linearizable.
//
//   build/examples/order_book [--orders=N] [--traders=K]
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/pnb_bst.h"
#include "util/cli.h"
#include "util/random.h"

namespace {

// Bids and asks share one key space around kMid: bids below, asks above.
constexpr long kMid = 100000;
constexpr long kTick = 1;

}  // namespace

int main(int argc, char** argv) {
  pnbbst::Cli cli(argc, argv);
  const int orders = static_cast<int>(cli.get_int("orders", 150000));
  const unsigned traders = static_cast<unsigned>(cli.get_int("traders", 4));
  for (const auto& unknown : cli.unknown()) {
    std::fprintf(stderr, "unknown flag: --%s\n", unknown.c_str());
    return 2;
  }

  pnbbst::PnbBst<long> book;
  std::atomic<bool> done{false};

  std::vector<std::thread> pool;
  for (unsigned ti = 0; ti < traders; ++ti) {
    pool.emplace_back([&, ti] {
      pnbbst::Xoshiro256 rng(pnbbst::thread_seed(31337, ti));
      for (int i = 0; i < orders / static_cast<int>(traders); ++i) {
        const bool bid = rng.next_bounded(2) == 0;
        const long offset =
            static_cast<long>(rng.next_bounded(500)) * kTick + 1;
        const long price = bid ? kMid - offset : kMid + offset;
        if (rng.next_bounded(3) != 0) {
          book.insert(price);  // post a level
        } else {
          book.erase(price);  // cancel a level
        }
      }
    });
  }

  std::thread market_data([&] {
    int publishes = 0;
    while (!done.load()) {
      // Top 5 bid levels (descending) and ask levels (ascending) from one
      // consistent snapshot of the book.
      auto snap = book.snapshot();
      std::vector<long> bids, asks;
      snap.range_visit(kMid - 500, kMid - 1,
                       [&](long p) { bids.push_back(p); });
      snap.range_visit(kMid + 1, kMid + 500,
                       [&](long p) { asks.push_back(p); });
      ++publishes;
      if (publishes % 500 == 0) {
        const long best_bid = bids.empty() ? 0 : bids.back();
        const long best_ask = asks.empty() ? 0 : asks.front();
        std::printf("[md] publish %d: best bid/ask = %ld/%ld, depth %zu/%zu, "
                    "spread %ld\n",
                    publishes, best_bid, best_ask, bids.size(), asks.size(),
                    best_bid && best_ask ? best_ask - best_bid : -1);
      }
    }
    std::printf("[md] total publishes: %d\n", publishes);
  });

  for (auto& th : pool) th.join();
  done = true;
  market_data.join();

  const std::size_t bid_levels = book.range_count(kMid - 500, kMid - 1);
  const std::size_t ask_levels = book.range_count(kMid + 1, kMid + 500);
  std::printf("final book: %zu bid levels, %zu ask levels\n", bid_levels,
              ask_levels);
  std::puts("order_book done");
  return 0;
}
