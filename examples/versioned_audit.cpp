// Versioned audit: exploiting persistence directly. An account registry
// takes snapshot "audit points" while updates continue; later, an auditor
// diffs two audit points — reading both historical versions concurrently
// with ongoing writes, wait-free.
//
// This exercises the multi-version substrate the paper builds RangeScan on:
// a Snapshot pins phase i and reads T_i regardless of later updates.
//
//   build/examples/versioned_audit [--accounts=N] [--rounds=K]
#include <algorithm>
#include <cstdio>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "core/pnb_bst.h"
#include "util/cli.h"
#include "util/random.h"

namespace {

using Tree = pnbbst::PnbBst<long>;

// Diff two audit points: returns (added, removed) between older and newer.
std::pair<std::vector<long>, std::vector<long>> diff(
    const Tree::Snapshot& older, const Tree::Snapshot& newer, long lo,
    long hi) {
  std::vector<long> before = older.range_scan(lo, hi);
  std::vector<long> after = newer.range_scan(lo, hi);
  std::vector<long> added, removed;
  std::set_difference(after.begin(), after.end(), before.begin(),
                      before.end(), std::back_inserter(added));
  std::set_difference(before.begin(), before.end(), after.begin(),
                      after.end(), std::back_inserter(removed));
  return {std::move(added), std::move(removed)};
}

}  // namespace

int main(int argc, char** argv) {
  pnbbst::Cli cli(argc, argv);
  const long accounts = cli.get_int("accounts", 10000);
  const int rounds = static_cast<int>(cli.get_int("rounds", 8));
  for (const auto& unknown : cli.unknown()) {
    std::fprintf(stderr, "unknown flag: --%s\n", unknown.c_str());
    return 2;
  }

  Tree registry;
  pnbbst::Xoshiro256 rng(404);
  for (long a = 0; a < accounts; a += 2) registry.insert(a);  // even ids

  std::vector<Tree::Snapshot> audit_points;
  audit_points.reserve(static_cast<std::size_t>(rounds) + 1);
  audit_points.push_back(registry.snapshot());

  // Writer churns account registrations while audit points accumulate.
  for (int round = 0; round < rounds; ++round) {
    std::thread writer([&] {
      pnbbst::Xoshiro256 wrng(
          pnbbst::thread_seed(500 + static_cast<unsigned>(round), 0));
      for (int i = 0; i < 20000; ++i) {
        const long a = static_cast<long>(
            wrng.next_bounded(static_cast<std::uint64_t>(accounts)));
        if (wrng.next_bounded(2)) {
          registry.insert(a);
        } else {
          registry.erase(a);
        }
      }
    });
    // Auditor reads the PREVIOUS audit point while the writer runs — the
    // historical version is immutable and wait-free to read.
    const auto& last = audit_points.back();
    const std::size_t historical = last.size();
    writer.join();
    audit_points.push_back(registry.snapshot());
    std::printf("round %d: audit point %llu, previous point still reads %zu "
                "accounts\n",
                round,
                static_cast<unsigned long long>(audit_points.back().phase()),
                historical);
  }

  // Full audit trail: diff consecutive audit points.
  std::printf("\naudit trail (%zu points):\n", audit_points.size());
  for (std::size_t i = 1; i < audit_points.size(); ++i) {
    auto [added, removed] =
        diff(audit_points[i - 1], audit_points[i], 0, accounts);
    std::printf("  %llu -> %llu: +%zu accounts, -%zu accounts (size %zu)\n",
                static_cast<unsigned long long>(audit_points[i - 1].phase()),
                static_cast<unsigned long long>(audit_points[i].phase()),
                added.size(), removed.size(), audit_points[i].size());
  }

  // Sanity: the first audit point still shows the original registrations.
  std::printf("\nfirst audit point still has exactly the even ids: %s\n",
              audit_points.front().size() ==
                      static_cast<std::size_t>(accounts / 2)
                  ? "yes"
                  : "NO (bug!)");
  std::puts("versioned_audit done");
  return 0;
}
